// Command pgarm-mine runs one parallel mining job and prints the results
// and per-pass statistics.
//
// The default mode mines generalized association rules (-mode itemset): the
// transaction source is either generated on the fly (-scale) or loaded from
// files produced by pgarm-gen (-in, repeatable or comma-separated), with the
// classification hierarchy reconstructed deterministically from the dataset
// configuration. With -mode seq it instead mines generalized sequential
// patterns with the [SK98] miners (NPSPM, SPSPM, HPSPM) over a generated
// customer-sequence database (-customers, -items, -roots, -fanout).
//
// -engine selects the miner family (internal/engines): the six candidate-
// based algorithms of the paper, or FPG — the taxonomy-aware parallel
// FP-Growth engine (internal/fpg), bit-identical output at any node and
// worker count. -mmap memory-maps columnar partition files instead of
// reading blocks with pread.
//
// With -rules the run continues past itemset mining into rule derivation
// (internal/rules) at the -minconf threshold; with -o the complete mined
// model — taxonomy, large itemsets, rules, generation metadata — is written
// as a snapshot file that pgarm-serve can serve and hot-swap.
//
// With -http the process serves the same live telemetry surface pgarm-worker
// has while mining: Prometheus /metrics, JSON /healthz, /debug/cluster (live
// pass/progress/skew introspection over the in-process cluster) and the
// standard /debug/pprof endpoints.
//
// With -follow the process instead tails a stream log written by pgarm-ingest
// and mines FUP-style incremental checkpoints (internal/stream): each
// -delta-txns new transactions trigger a delta pass whose result is
// bit-identical to a full batch re-mine, written to -o with carry-forward
// state, and optionally announced to a pgarm-serve instance via -reload-url.
//
// Examples:
//
//	pgarm-mine -algorithm H-HPGM-FGD -dataset R30F5 -scale 0.005 -nodes 8 -minsup 0.005
//	pgarm-mine -engine FPG -dataset R30F5 -scale 0.005 -nodes 4 -minsup 0.003
//	pgarm-mine -algorithm HPGM -dataset R30F5 -in /tmp/r30f5.n00.ptx,/tmp/r30f5.n01.ptx -minsup 0.01 -rules -minconf 0.6
//	pgarm-mine -dataset R30F5 -scale 0.002 -minsup 0.01 -minconf 0.3 -o /tmp/model.pgarm -quiet
//	pgarm-mine -follow -log /tmp/stream -dataset R30F5 -minsup 0.01 -delta-txns 2000 -o /tmp/model.pgarm -reload-url http://localhost:8080/reload
//	pgarm-mine -mode seq -algorithm HPSPM -customers 5000 -nodes 4 -minsup 0.05 -trace seq.json
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"pgarm/internal/core"
	"pgarm/internal/driver"
	"pgarm/internal/engines"
	"pgarm/internal/fpg"
	"pgarm/internal/gen"
	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/logx"
	"pgarm/internal/metrics"
	"pgarm/internal/model"
	"pgarm/internal/obs"
	"pgarm/internal/obshttp"
	"pgarm/internal/profiling"
	"pgarm/internal/rules"
	"pgarm/internal/seq"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

// serveTelemetry mounts the shared observability surface (obshttp) for an
// in-process mining run: no fabric endpoint (the nodes talk over channels or
// loopback inside this process), but live registry metrics and the cluster
// view are there. Exits on a bad listen address, logs and keeps mining on
// anything later.
func serveTelemetry(addr, alg string, nodes int, reg *obs.Registry, view *driver.ClusterView, logger *slog.Logger) {
	mux := obshttp.NewMux(obshttp.Config{
		Nodes:     nodes,
		Algorithm: alg,
		Registry:  reg,
		Cluster:   view,
		Log:       logger,
	})
	bound, err := obshttp.Serve(addr, mux, logger)
	if err != nil {
		logx.Fatal(logger, "telemetry listen failed", "addr", addr, "err", err)
	}
	logger.Info("telemetry serving", "addr", bound,
		"endpoints", "/metrics /healthz /debug/cluster /debug/pprof")
}

func main() {
	var (
		mode     = flag.String("mode", "itemset", "itemset (association rules) or seq (sequential patterns)")
		algName  = flag.String("algorithm", "", "itemset: NPGM, HPGM, H-HPGM, H-HPGM-TGD, H-HPGM-PGD or H-HPGM-FGD (default H-HPGM-FGD); seq: NPSPM, SPSPM or HPSPM (default HPSPM)")
		engName  = flag.String("engine", "", "itemset mining engine, overrides -algorithm: "+engines.Names()+" (FPG = pattern growth, no candidate sets)")
		dataset  = flag.String("dataset", "R30F5", "dataset configuration (defines the hierarchy): R30F5, R30F3 or R30F10")
		cust     = flag.Int("customers", 2000, "seq mode: customers to generate")
		seqItems = flag.Int("items", 300, "seq mode: item universe size")
		seqRoots = flag.Int("roots", 5, "seq mode: hierarchy roots")
		seqFan   = flag.Int("fanout", 4, "seq mode: hierarchy fanout")
		scale    = flag.Float64("scale", 0.005, "generate this fraction of the paper dataset (ignored with -in)")
		seed     = flag.Int64("seed", 1998, "generator seed (ignored with -in)")
		inFiles  = flag.String("in", "", "comma-separated per-node transaction files from pgarm-gen")
		nodes    = flag.Int("nodes", 8, "cluster size (ignored with -in: one node per file)")
		minsup   = flag.Float64("minsup", 0.005, "minimum support as a fraction (0.005 = 0.5%)")
		rulesOn  = flag.Bool("rules", false, "derive and print rules after mining")
		minconf  = flag.Float64("minconf", 0.5, "minimum confidence for rule derivation (-rules / -o)")
		interest = flag.Float64("interest", 0, "R-interestingness prune factor, e.g. 1.1 (0 = keep all rules)")
		outModel = flag.String("o", "", "write the mined model (taxonomy, itemsets, rules, metadata) to this snapshot file")
		budget   = flag.Int64("budget", 0, "per-node candidate memory budget in bytes (0 = unlimited)")
		adaptive = flag.Bool("adaptive", false, "H-HPGM family: escalate duplication granules per hot taxonomy subtree from observed barrier skew")
		maxK     = flag.Int("maxk", 0, "stop after this pass (0 = run to completion)")
		tcp      = flag.Bool("tcp", false, "run the nodes over loopback TCP instead of channels")
		mmapOn   = flag.Bool("mmap", false, "-in: map columnar partition files instead of pread (falls back where unsupported)")
		quiet    = flag.Bool("quiet", false, "suppress the itemset listing, print stats only")
		topN     = flag.Int("top", 25, "how many itemsets/rules to list per section")
		workers  = flag.Int("workers", 0, "scan workers per node (0 or 1 = scan on the node goroutine)")
		traceOut = flag.String("trace", "", "write a Chrome trace_event JSON file of the run")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		httpAddr = flag.String("http", "", "serve /metrics, /healthz, /debug/cluster and /debug/pprof on this address")

		follow    = flag.Bool("follow", false, "tail a stream log (-log) and mine incremental checkpoints into -o")
		streamLog = flag.String("log", "", "-follow: stream log directory written by pgarm-ingest")
		deltaTxns = flag.Int("delta-txns", 5000, "-follow: mine a checkpoint once this many new transactions arrived")
		poll      = flag.Duration("poll", 200*time.Millisecond, "-follow: log polling interval")
		idleMine  = flag.Duration("idle", 2*time.Second, "-follow: mine a partial delta after this much stream silence")
		maxDeltas = flag.Int("max-deltas", 0, "-follow: exit after this many checkpoints (0 = follow forever)")
		reloadURL = flag.String("reload-url", "", "-follow: POST here after each snapshot (pgarm-serve /reload)")

		logOpts = logx.Flags()
	)
	flag.Parse()
	logger := logOpts.Init("pgarm-mine")

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		logx.Fatal(logger, "profiling", "err", err)
	}
	defer stopProf()

	if *follow {
		if *mode != "itemset" {
			logx.Fatal(logger, "-follow requires -mode itemset")
		}
		if *engName != "" {
			logx.Fatal(logger, "-engine applies to batch itemset mining; -follow always uses the incremental Cumulate miner")
		}
		followStream(logger, followOptions{
			logDir:    *streamLog,
			dataset:   *dataset,
			out:       *outModel,
			minsup:    *minsup,
			minconf:   *minconf,
			interest:  *interest,
			maxK:      *maxK,
			workers:   *workers,
			deltaTxns: *deltaTxns,
			poll:      *poll,
			idle:      *idleMine,
			maxDeltas: *maxDeltas,
			reloadURL: *reloadURL,
		})
		return
	}
	if *mode == "seq" {
		if *outModel != "" {
			logx.Fatal(logger, "-o snapshots require -mode itemset (sequential patterns have no serving format yet)")
		}
		if *engName != "" {
			logx.Fatal(logger, "-engine applies to -mode itemset; seq selects its miner with -algorithm")
		}
		mineSequences(logger, seqOptions{
			algorithm: *algName,
			customers: *cust,
			items:     *seqItems,
			roots:     *seqRoots,
			fanout:    *seqFan,
			seed:      *seed,
			nodes:     *nodes,
			minsup:    *minsup,
			maxK:      *maxK,
			workers:   *workers,
			tcp:       *tcp,
			traceOut:  *traceOut,
			quiet:     *quiet,
			topN:      *topN,
			httpAddr:  *httpAddr,
		})
		return
	}
	if *mode != "itemset" {
		logx.Fatal(logger, "unknown mode (itemset or seq)", "mode", *mode)
	}
	eng := engines.Engine(core.HHPGMFGD)
	switch {
	case *engName != "":
		var err error
		eng, err = engines.Parse(*engName)
		if err != nil {
			logx.Fatal(logger, "bad engine", "err", err)
		}
	case *algName != "":
		alg, err := core.ParseAlgorithm(*algName)
		if err != nil {
			logx.Fatal(logger, "bad algorithm", "err", err)
		}
		eng = engines.Engine(alg)
	}
	if eng.IsFPG() && (*budget != 0 || *adaptive) {
		logx.Fatal(logger, "-budget and -adaptive apply to the candidate engines only, not FPG")
	}
	params, err := gen.ByName(*dataset)
	if err != nil {
		logx.Fatal(logger, "bad dataset", "err", err)
	}

	var tax *taxonomy.Taxonomy
	var parts []txn.Scanner
	if *inFiles != "" {
		tax, err = taxonomy.Balanced(params.NumItems, params.Roots, params.Fanout)
		if err != nil {
			logx.Fatal(logger, "taxonomy", "err", err)
		}
		for _, path := range strings.Split(*inFiles, ",") {
			// txn.Open sniffs the magic, so row and columnar partitions (and
			// mixtures) all work; columnar ones additionally scan block-sharded
			// with per-pass skip filters.
			f, err := txn.OpenWith(strings.TrimSpace(path), txn.OpenOptions{Mmap: *mmapOn})
			if err != nil {
				logx.Fatal(logger, "open partition", "err", err)
			}
			parts = append(parts, f)
		}
	} else {
		params = params.Scaled(*scale)
		params.Seed = *seed
		logger.Info("generating dataset", "dataset", params.Name, "txns", params.NumTxns)
		ds, err := gen.Generate(params)
		if err != nil {
			logx.Fatal(logger, "generate", "err", err)
		}
		tax = ds.Taxonomy
		for _, p := range txn.Partition(ds.DB, *nodes) {
			parts = append(parts, p)
		}
	}

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}
	var reg *obs.Registry
	var view *driver.ClusterView
	if *httpAddr != "" {
		reg = obs.NewRegistry()
		view = &driver.ClusterView{}
		serveTelemetry(*httpAddr, string(eng), len(parts), reg, view, logger)
	}
	logger.Info("mining", "engine", string(eng), "nodes", len(parts), "minsup", *minsup)

	// Both families produce the same result shape — large itemsets with exact
	// counts in canonical order plus run stats — so everything downstream
	// (listing, rule derivation, model snapshots) is engine-agnostic.
	var large [][]itemset.Counted
	var stats *metrics.RunStats
	if eng.IsFPG() {
		cfg := fpg.Config{
			MinSupport: *minsup,
			MaxK:       *maxK,
			Workers:    *workers,
			Tracer:     tracer,
			Registry:   reg,
			View:       view,
		}
		if *tcp {
			cfg.Fabric = fpg.FabricTCP
		}
		res, err := fpg.Mine(tax, parts, cfg)
		if err != nil {
			logx.Fatal(logger, "mining failed", "err", err)
		}
		large, stats = res.Large, res.Stats
	} else {
		cfg := core.Config{
			Algorithm:    eng.Algorithm(),
			MinSupport:   *minsup,
			MaxK:         *maxK,
			MemoryBudget: *budget,
			Workers:      *workers,
			Adaptive:     *adaptive,
			Tracer:       tracer,
			Registry:     reg,
			View:         view,
		}
		if *tcp {
			cfg.Fabric = core.FabricTCP
		}
		res, err := core.Mine(tax, parts, cfg)
		if err != nil {
			logx.Fatal(logger, "mining failed", "err", err)
		}
		large, stats = res.Large, res.Stats
	}
	stats.Dataset = params.Name
	if tracer != nil {
		if d := tracer.Dropped(); d > 0 {
			logger.Warn("tracer dropped spans; trace file is truncated", "dropped", d)
		}
		if err := writeTrace(*traceOut, tracer); err != nil {
			logx.Fatal(logger, "trace write failed", "err", err)
		}
		logger.Info("wrote trace", "spans", tracer.Spans(), "path", *traceOut)
	}

	fmt.Print(stats.String())
	if !*quiet {
		for k := 1; k <= len(large); k++ {
			lk := large[k-1]
			fmt.Printf("\nL_%d: %d itemsets", k, len(lk))
			if k == 1 {
				fmt.Println()
				continue
			}
			fmt.Println(":")
			for i, c := range lk {
				if i >= *topN {
					fmt.Printf("  ... %d more\n", len(lk)-i)
					break
				}
				fmt.Printf("  %s  sup_cou=%d\n", item.Format(c.Items), c.Count)
			}
		}
	}

	if *rulesOn || *outModel != "" {
		total := 0
		for _, p := range parts {
			total += p.Len()
		}
		support := supportIndex(large)
		rs, err := rules.Derive(tax, allItemsets(large), support, rules.Config{
			MinConfidence: *minconf,
			NumTxns:       total,
		})
		if err != nil {
			logx.Fatal(logger, "rule derivation failed", "err", err)
		}
		if *interest > 0 {
			before := len(rs)
			rs = rules.Prune(tax, rs, support, total, *interest)
			logger.Info("R-interestingness pruned rules", "r", *interest, "pruned", before-len(rs), "before", before)
		}
		if *rulesOn {
			fmt.Printf("\n%d rules at confidence >= %.0f%%:\n", len(rs), *minconf*100)
			for i, r := range rs {
				if i >= *topN {
					fmt.Printf("  ... %d more\n", len(rs)-i)
					break
				}
				fmt.Printf("  %s\n", r)
			}
		}
		if *outModel != "" {
			m := &model.Model{
				Meta: model.Meta{
					Dataset:       params.Name,
					Algorithm:     string(eng),
					Tool:          model.ToolVersion,
					NumTxns:       int64(total),
					MinSupport:    *minsup,
					MinConfidence: *minconf,
					CreatedUnix:   time.Now().Unix(),
					Granules:      stats.FinalPlan().GranuleMap(),
				},
				Taxonomy: tax,
				Large:    large,
				Rules:    rs,
			}
			if err := model.WriteFile(*outModel, m); err != nil {
				logx.Fatal(logger, "model write failed", "err", err)
			}
			logger.Info("wrote model snapshot", "path", *outModel,
				"itemsets", m.NumItemsets(), "rules", len(m.Rules))
		}
	}
}

// allItemsets flattens a level pyramid into one slice, the shape rule
// derivation consumes (mirrors core.Result.All / fpg.Result.All).
func allItemsets(large [][]itemset.Counted) []itemset.Counted {
	var out []itemset.Counted
	for _, l := range large {
		out = append(out, l...)
	}
	return out
}

// supportIndex builds itemset-key -> support over every large itemset.
func supportIndex(large [][]itemset.Counted) map[string]int64 {
	idx := make(map[string]int64)
	for _, level := range large {
		for _, c := range level {
			idx[itemset.Key(c.Items)] = c.Count
		}
	}
	return idx
}

// seqOptions are the flags relevant to -mode seq.
type seqOptions struct {
	algorithm string
	customers int
	items     int
	roots     int
	fanout    int
	seed      int64
	nodes     int
	minsup    float64
	maxK      int
	workers   int
	tcp       bool
	traceOut  string
	quiet     bool
	topN      int
	httpAddr  string
}

// mineSequences runs one parallel sequential-pattern job: generate a
// customer-sequence database, mine it with the selected [SK98] miner and
// print the frequent patterns with per-pass statistics.
func mineSequences(logger *slog.Logger, o seqOptions) {
	if o.algorithm == "" {
		o.algorithm = "HPSPM"
	}
	alg, err := seq.ParseAlgorithm(o.algorithm)
	if err != nil {
		logx.Fatal(logger, "bad algorithm", "err", err)
	}
	tax, err := taxonomy.Balanced(o.items, o.roots, o.fanout)
	if err != nil {
		logx.Fatal(logger, "taxonomy", "err", err)
	}
	p := seq.DefaultGenParams()
	p.NumCustomers = o.customers
	p.Seed = o.seed
	logger.Info("generating customer sequences", "customers", p.NumCustomers, "taxonomy", tax.String())
	db := seq.GenerateSequences(tax, p)

	cfg := seq.ParallelConfig{
		Algorithm:  alg,
		MinSupport: o.minsup,
		MaxK:       o.maxK,
		Workers:    o.workers,
	}
	if o.tcp {
		cfg.Fabric = seq.FabricTCP
	}
	var tracer *obs.Tracer
	if o.traceOut != "" {
		tracer = obs.NewTracer()
		cfg.Tracer = tracer
	}
	if o.httpAddr != "" {
		reg := obs.NewRegistry()
		view := &driver.ClusterView{}
		cfg.Registry = reg
		cfg.View = view
		serveTelemetry(o.httpAddr, string(alg), o.nodes, reg, view, logger)
	}
	logger.Info("mining", "algorithm", string(alg), "nodes", o.nodes, "minsup", o.minsup)
	res, err := seq.MineParallel(tax, seq.Partition(db, o.nodes), cfg)
	if err != nil {
		logx.Fatal(logger, "mining failed", "err", err)
	}
	res.Stats.Dataset = fmt.Sprintf("SEQ-C%d", db.Len())
	if tracer != nil {
		if d := tracer.Dropped(); d > 0 {
			logger.Warn("tracer dropped spans; trace file is truncated", "dropped", d)
		}
		if err := writeTrace(o.traceOut, tracer); err != nil {
			logx.Fatal(logger, "trace write failed", "err", err)
		}
		logger.Info("wrote trace", "spans", tracer.Spans(), "path", o.traceOut)
	}

	fmt.Print(res.Stats.String())
	if o.quiet {
		return
	}
	for k := 1; k <= len(res.Frequent); k++ {
		fk := res.FrequentK(k)
		fmt.Printf("\nF_%d: %d patterns", k, len(fk))
		if k == 1 {
			fmt.Println()
			continue
		}
		fmt.Println(":")
		for i, pat := range fk {
			if i >= o.topN {
				fmt.Printf("  ... %d more\n", len(fk)-i)
				break
			}
			fmt.Printf("  %s\n", pat)
		}
	}
}

// writeTrace writes the tracer's Chrome trace_event JSON to path.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
