// Command pgarm-bench regenerates the paper's evaluation tables and
// figures (§4) on scaled versions of the Table 5 datasets.
//
// Usage:
//
//	pgarm-bench -experiment table6
//	pgarm-bench -experiment fig14 -scale 0.02 -nodes 16
//	pgarm-bench -experiment all -scale 0.01 | tee results.txt
//	pgarm-bench -experiment table6 -scale 0.002 -trace trace.json -json report.json
//	pgarm-bench -experiment seq -nodes 8 -json seq.json
//	pgarm-bench -experiment serve -scale 0.005 -clients 8 -requests 2000 -json serve.json
//
// -experiment serve is the serving-side load bench: it mines the dataset,
// derives rules, stands up the pgarm-serve index over loopback HTTP and
// replays a zipf-skewed basket mix with concurrent clients, reporting QPS and
// p50/p99 latency with the recommendation cache off and on.
//
// -experiment adapt is the skew-adaptation bench: it splits the dataset into
// zipf-sized partitions (node 0 hoards data and straggles) and mines them
// statically and with -adaptive granule escalation, reporting per-pass
// barrier waits, traffic, the granule map each pass ran with and bit-identity
// against the sequential reference:
//
//	pgarm-bench -experiment adapt -scale 0.005 -nodes 4 -zipf 1.5 -json adapt.json
//
// -experiment fpg is the miner-family head-to-head: the same partitioned
// dataset mined at every swept support by the Cumulate-family candidate
// engines and by the taxonomy-aware parallel FP-Growth engine (internal/fpg),
// with wall-clock, candidate counts, the FP-Growth speedup per arm and
// bit-identity of every arm against sequential Cumulate:
//
//	pgarm-bench -experiment fpg -scale 0.01 -nodes 4 -workers 4 -json fpg.json
//
// -trace writes a Chrome trace_event file (load it in chrome://tracing or
// https://ui.perfetto.dev) covering every mining run; -json writes a
// versioned machine-readable report with per-run, per-pass and per-node
// statistics, per-message-kind byte breakdowns and span rollups.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"

	"pgarm/internal/core"
	"pgarm/internal/experiment"
	"pgarm/internal/logx"
	"pgarm/internal/metrics"
	"pgarm/internal/obs"
	"pgarm/internal/profiling"
)

// logger is the process logger; set in main before any experiment runs.
var logger *slog.Logger

// benchReport is the top-level -json document: one report per mining run the
// selected experiments executed, plus span rollups when tracing was on.
type benchReport struct {
	Version    int              `json:"version"`
	Experiment string           `json:"experiment"`
	Scale      float64          `json:"scale"`
	Nodes      int              `json:"nodes"`
	Reports    []metrics.Report `json:"reports"`
	Spans      []obs.Rollup     `json:"spans,omitempty"`
	// Serve holds the serving load-bench arms (cache off / cache on) when
	// `-experiment serve` ran.
	Serve []metrics.ServeReport `json:"serve,omitempty"`
	// Scan holds the storage-format bench arms (row vs columnar decode,
	// block-skip mining) when `-experiment scan` ran.
	Scan []metrics.ScanReport `json:"scan,omitempty"`
	// Adapt holds the skew-adaptation arms (sequential reference, static,
	// adaptive) when `-experiment adapt` ran.
	Adapt []metrics.AdaptReport `json:"adapt,omitempty"`
	// Stream holds the incremental-mining checkpoints (recount fractions,
	// append→servable freshness, bit-identity) when `-experiment stream` ran.
	Stream []metrics.StreamReport `json:"stream,omitempty"`
	// Fpg holds the FP-Growth vs. Cumulate-family head-to-head arms when
	// `-experiment fpg` ran.
	Fpg []metrics.FpgReport `json:"fpg,omitempty"`
}

func main() {
	def := experiment.Defaults()
	var (
		exp      = flag.String("experiment", "all", "table5, table6, fig13, fig14, fig15, fig16, seq, serve, scan, adapt, stream, fpg or all")
		scale    = flag.Float64("scale", def.Scale, "fraction of the paper's 3.2M transactions")
		nodes    = flag.Int("nodes", def.Nodes, "cluster size for the fixed-size experiments")
		budget   = flag.Int64("budget", 0, "per-node memory budget in bytes (0 = auto-derived)")
		minsups  = flag.String("minsups", "", "comma-separated support sweep, e.g. 0.02,0.01,0.005,0.003")
		tcp      = flag.Bool("tcp", false, "run the nodes over loopback TCP")
		workers  = flag.Int("workers", 0, "scan workers per node (0 or 1 = scan on the node goroutine)")
		traceOut = flag.String("trace", "", "write a Chrome trace_event JSON file covering every run")
		jsonOut  = flag.String("json", "", "write a machine-readable run report to this file")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")

		sdef     = experiment.ServeDefaults()
		clients  = flag.Int("clients", sdef.Clients, "serve bench: concurrent load-generator clients")
		requests = flag.Int("requests", sdef.Requests, "serve bench: total requests per arm")
		minconf  = flag.Float64("minconf", sdef.MinConfidence, "serve bench: rule-derivation confidence threshold")

		scdef      = experiment.ScanDefaults()
		scanWork   = flag.Int("scan-workers", scdef.Workers, "scan bench: scan workers per measurement")
		scanBlock  = flag.Int("scan-block", scdef.TxnsPerBlock, "scan bench: transactions per columnar block (mining arm)")
		scanMinSup = flag.Float64("scan-minsup", scdef.MinSup, "scan bench: mining-arm support threshold")
		mmapOn     = flag.Bool("mmap", false, "scan bench: map columnar partitions instead of pread (falls back to pread where unsupported)")

		fdef    = experiment.FpgDefaults()
		fpgSups = flag.String("fpg-minsups", "", "fpg bench: comma-separated support sweep (default from FpgDefaults)")

		stdef       = experiment.StreamDefaults()
		streamCkpts = flag.Int("checkpoints", stdef.Checkpoints, "stream bench: number of ingested deltas / incremental checkpoints")
		streamSup   = flag.Float64("stream-minsup", stdef.MinSup, "stream bench: support threshold")

		adef        = experiment.AdaptDefaults()
		adaptMinSup = flag.Float64("adapt-minsup", adef.MinSup, "adapt bench: support threshold")
		adaptZipf   = flag.Float64("zipf", adef.Zipf, "adapt bench: partition-size skew exponent (0 = even split)")
		adaptEsc    = flag.Float64("escalate-at", 0, "adapt bench: barrier-wait max/mean ratio triggering escalation (0 = default 1.25)")
		logOpts     = logx.Flags()
	)
	flag.Parse()
	logger = logOpts.Init("pgarm-bench")

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		logx.Fatal(logger, "profiling", "err", err)
	}
	defer stopProf()

	opt := def
	opt.Scale = *scale
	opt.Nodes = *nodes
	opt.Budget = *budget
	opt.Workers = *workers
	if *tcp {
		opt.Fabric = core.FabricTCP
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
		opt.Tracer = tracer
	}
	if *minsups != "" {
		opt.MinSups = nil
		for _, s := range strings.Split(*minsups, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				logx.Fatal(logger, "bad -minsups entry", "entry", s, "err", err)
			}
			opt.MinSups = append(opt.MinSups, v)
		}
	}
	env, err := experiment.NewEnv(opt)
	if err != nil {
		logx.Fatal(logger, "experiment env", "err", err)
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("table5") {
		ran = true
		fmt.Println(env.Table5().Render())
	}
	if want("table6") {
		ran = true
		step("Table 6")
		t, err := env.Table6()
		if err != nil {
			logx.Fatal(logger, "experiment failed", "err", err)
		}
		fmt.Println(t.Render())
	}
	if want("fig13") {
		ran = true
		step("Figure 13")
		ts, err := env.Fig13()
		if err != nil {
			logx.Fatal(logger, "experiment failed", "err", err)
		}
		for _, t := range ts {
			fmt.Println(t.Render())
		}
	}
	if want("fig14") {
		ran = true
		step("Figure 14")
		ts, err := env.Fig14()
		if err != nil {
			logx.Fatal(logger, "experiment failed", "err", err)
		}
		for _, t := range ts {
			fmt.Println(t.Render())
		}
	}
	if want("fig15") {
		ran = true
		step("Figure 15")
		t, charts, err := env.Fig15()
		if err != nil {
			logx.Fatal(logger, "experiment failed", "err", err)
		}
		fmt.Println(t.Render())
		for _, alg := range []string{"H-HPGM", "H-HPGM-TGD", "H-HPGM-PGD", "H-HPGM-FGD"} {
			fmt.Printf("%s probes per node:\n%s\n", alg, charts[alg])
		}
	}
	if want("fig16") {
		ran = true
		step("Figure 16")
		ts, err := env.Fig16()
		if err != nil {
			logx.Fatal(logger, "experiment failed", "err", err)
		}
		for _, t := range ts {
			fmt.Println(t.Render())
		}
	}
	if want("seq") {
		ran = true
		step("sequence sweep")
		t, err := env.SeqSweep()
		if err != nil {
			logx.Fatal(logger, "experiment failed", "err", err)
		}
		fmt.Println(t.Render())
	}
	var serveReports []metrics.ServeReport
	// The serve bench measures real wall-clock load on whatever machine runs
	// it, unlike the modeled mining experiments, so it is opt-in rather than
	// part of "all".
	if *exp == "serve" {
		ran = true
		step("serving load bench")
		so := sdef
		so.Clients = *clients
		so.Requests = *requests
		so.MinConfidence = *minconf
		t, reps, err := env.Serve(so)
		if err != nil {
			logx.Fatal(logger, "experiment failed", "err", err)
		}
		fmt.Println(t.Render())
		serveReports = reps
	}
	var scanReports []metrics.ScanReport
	// The scan bench also measures real wall-clock decode throughput, so it
	// too is opt-in rather than part of "all".
	if *exp == "scan" {
		ran = true
		step("storage-format scan bench")
		so := scdef
		so.Workers = *scanWork
		so.TxnsPerBlock = *scanBlock
		so.MinSup = *scanMinSup
		so.Mmap = *mmapOn
		ts, reps, err := env.Scan(so)
		if err != nil {
			logx.Fatal(logger, "experiment failed", "err", err)
		}
		for _, t := range ts {
			fmt.Println(t.Render())
		}
		scanReports = reps
	}
	var streamReports []metrics.StreamReport
	// The stream bench measures real append→servable wall-clock, so it too
	// is opt-in rather than part of "all".
	if *exp == "stream" {
		ran = true
		step("streaming ingestion bench")
		so := stdef
		so.Checkpoints = *streamCkpts
		so.MinSup = *streamSup
		if *workers > 0 {
			so.Workers = *workers
		}
		t, reps, err := env.Stream(so)
		if err != nil {
			logx.Fatal(logger, "experiment failed", "err", err)
		}
		fmt.Println(t.Render())
		streamReports = reps
	}
	var adaptReports []metrics.AdaptReport
	// The adapt bench measures real barrier wall-clock under deliberately
	// skewed partitions, so it too is opt-in rather than part of "all".
	if *exp == "adapt" {
		ran = true
		step("skew adaptation bench")
		ao := adef
		ao.MinSup = *adaptMinSup
		ao.Zipf = *adaptZipf
		ao.EscalateAt = *adaptEsc
		t, reps, err := env.Adapt(ao)
		if err != nil {
			logx.Fatal(logger, "experiment failed", "err", err)
		}
		fmt.Println(t.Render())
		adaptReports = reps
	}
	var fpgReports []metrics.FpgReport
	// The fpg bench races real wall-clock of the two miner families, so it
	// too is opt-in rather than part of "all".
	if *exp == "fpg" {
		ran = true
		step("FP-Growth head-to-head bench")
		fo := fdef
		if *fpgSups != "" {
			fo.MinSups = nil
			for _, s := range strings.Split(*fpgSups, ",") {
				v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
				if err != nil {
					logx.Fatal(logger, "bad -fpg-minsups entry", "entry", s, "err", err)
				}
				fo.MinSups = append(fo.MinSups, v)
			}
		}
		t, reps, err := env.Fpg(fo)
		if err != nil {
			logx.Fatal(logger, "experiment failed", "err", err)
		}
		fmt.Println(t.Render())
		fpgReports = reps
	}
	if !ran {
		logx.Fatal(logger, "unknown experiment", "experiment", *exp)
	}

	if *traceOut != "" {
		if d := tracer.Dropped(); d > 0 {
			logger.Warn("tracer dropped spans; trace file is truncated", "dropped", d)
		}
		if err := writeTrace(*traceOut, tracer); err != nil {
			logx.Fatal(logger, "trace write failed", "err", err)
		}
		logger.Info("wrote trace", "spans", tracer.Spans(), "path", *traceOut)
	}
	if *jsonOut != "" {
		rep := benchReport{
			Version:    metrics.ReportVersion,
			Experiment: *exp,
			Scale:      *scale,
			Nodes:      *nodes,
		}
		for _, rs := range env.Runs() {
			rep.Reports = append(rep.Reports, metrics.BuildReport(rs, nil))
		}
		if tracer != nil {
			rep.Spans = tracer.Rollups()
		}
		rep.Serve = serveReports
		rep.Scan = scanReports
		rep.Adapt = adaptReports
		rep.Stream = streamReports
		rep.Fpg = fpgReports
		b, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			logx.Fatal(logger, "report marshal failed", "err", err)
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			logx.Fatal(logger, "report write failed", "err", err)
		}
		logger.Info("wrote run reports", "reports", len(rep.Reports), "path", *jsonOut)
	}
}

func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func step(name string) {
	logger.Info("running experiment", "name", name)
}
