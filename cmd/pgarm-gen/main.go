// Command pgarm-gen generates the paper's synthetic datasets (Table 5) and
// writes them as binary transaction files, optionally pre-partitioned into
// per-node local-disk files.
//
// Usage:
//
//	pgarm-gen -dataset R30F5 -scale 0.01 -out /tmp/r30f5.ptx
//	pgarm-gen -dataset R30F3 -scale 0.01 -nodes 16 -out /tmp/r30f3    # writes r30f3.n00.ptx ... n15.ptx
//	pgarm-gen -dataset R30F5 -scale 0.01 -format columnar -out /tmp/r30f5.ptc
//	pgarm-gen -describe
//
// -format selects the on-disk layout: "row" is the original stream of
// delta-coded transactions, "columnar" the block-compressed columnar format
// with per-block skip filters (see internal/txn). The miners auto-detect the
// format by magic, so either feeds -in unchanged.
package main

import (
	"flag"
	"fmt"

	"pgarm/internal/gen"
	"pgarm/internal/logx"
	"pgarm/internal/txn"
)

func main() {
	var (
		dataset  = flag.String("dataset", "R30F5", "dataset configuration: R30F5, R30F3 or R30F10")
		scale    = flag.Float64("scale", 0.01, "fraction of the paper's 3.2M transactions to generate")
		seed     = flag.Int64("seed", 1998, "generator seed")
		nodes    = flag.Int("nodes", 0, "partition into this many per-node files (0 = single file)")
		out      = flag.String("out", "", "output path (single file) or path prefix (with -nodes)")
		format   = flag.String("format", "row", "on-disk layout: row or columnar")
		block    = flag.Int("block", txn.DefaultTxnsPerBlock, "columnar format: transactions per block")
		describe = flag.Bool("describe", false, "print the Table 5 parameter sheet and exit")
		logOpts  = logx.Flags()
	)
	flag.Parse()
	logger := logOpts.Init("pgarm-gen")

	if *describe {
		for _, name := range []string{"R30F5", "R30F3", "R30F10"} {
			p, _ := gen.ByName(name)
			fmt.Print(p.Describe())
			fmt.Println()
		}
		return
	}
	if *out == "" {
		logx.Fatal(logger, "missing -out path")
	}
	p, err := gen.ByName(*dataset)
	if err != nil {
		logx.Fatal(logger, "bad dataset", "err", err)
	}
	p = p.Scaled(*scale)
	p.Seed = *seed
	logger.Info("generating", "dataset", p.Name, "txns", p.NumTxns, "items", p.NumItems)
	ds, err := gen.Generate(p)
	if err != nil {
		logx.Fatal(logger, "generate", "err", err)
	}
	write := func(path string, db *txn.DB) error {
		switch *format {
		case "row":
			return txn.WriteFile(path, db)
		case "columnar":
			return txn.WriteColumnar(path, db, ds.Taxonomy, *block)
		default:
			return fmt.Errorf("unknown -format %q (row or columnar)", *format)
		}
	}
	if *nodes <= 0 {
		if err := write(*out, ds.DB); err != nil {
			logx.Fatal(logger, "write failed", "path", *out, "err", err)
		}
		logger.Info("wrote dataset", "path", *out, "txns", ds.DB.Len(), "avg_size", ds.DB.AvgSize())
		return
	}
	parts := txn.Partition(ds.DB, *nodes)
	for i, part := range parts {
		path := fmt.Sprintf("%s.n%02d.ptx", *out, i)
		if err := write(path, part); err != nil {
			logx.Fatal(logger, "write failed", "path", path, "err", err)
		}
		logger.Info("wrote partition", "path", path, "node", i, "txns", part.Len())
	}
}
