// Command pgarm-gen generates the paper's synthetic datasets (Table 5) and
// writes them as binary transaction files, optionally pre-partitioned into
// per-node local-disk files.
//
// Usage:
//
//	pgarm-gen -dataset R30F5 -scale 0.01 -out /tmp/r30f5.ptx
//	pgarm-gen -dataset R30F3 -scale 0.01 -nodes 16 -out /tmp/r30f3    # writes r30f3.n00.ptx ... n15.ptx
//	pgarm-gen -dataset R30F5 -scale 0.01 -format columnar -out /tmp/r30f5.ptc
//	pgarm-gen -describe
//
// -format selects the on-disk layout: "row" is the original stream of
// delta-coded transactions, "columnar" the block-compressed columnar format
// with per-block skip filters (see internal/txn). The miners auto-detect the
// format by magic, so either feeds -in unchanged.
//
// Generation is out-of-core: transactions stream from gen.Stream straight
// into the per-partition writers (round-robin, matching txn.Partition), so
// memory stays constant — the full-scale 3.2M-transaction datasets never
// need to fit in RAM.
package main

import (
	"flag"
	"fmt"

	"pgarm/internal/gen"
	"pgarm/internal/logx"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

// partWriter is the streaming surface both on-disk formats expose.
type partWriter interface {
	Append(txn.Transaction) error
	Count() int64
	Close() error
}

func main() {
	var (
		dataset  = flag.String("dataset", "R30F5", "dataset configuration: R30F5, R30F3 or R30F10")
		scale    = flag.Float64("scale", 0.01, "fraction of the paper's 3.2M transactions to generate")
		seed     = flag.Int64("seed", 1998, "generator seed")
		nodes    = flag.Int("nodes", 0, "partition into this many per-node files (0 = single file)")
		out      = flag.String("out", "", "output path (single file) or path prefix (with -nodes)")
		format   = flag.String("format", "row", "on-disk layout: row or columnar")
		block    = flag.Int("block", txn.DefaultTxnsPerBlock, "columnar format: transactions per block")
		describe = flag.Bool("describe", false, "print the Table 5 parameter sheet and exit")
		logOpts  = logx.Flags()
	)
	flag.Parse()
	logger := logOpts.Init("pgarm-gen")

	if *describe {
		for _, name := range []string{"R30F5", "R30F3", "R30F10"} {
			p, _ := gen.ByName(name)
			fmt.Print(p.Describe())
			fmt.Println()
		}
		return
	}
	if *out == "" {
		logx.Fatal(logger, "missing -out path")
	}
	p, err := gen.ByName(*dataset)
	if err != nil {
		logx.Fatal(logger, "bad dataset", "err", err)
	}
	p = p.Scaled(*scale)
	p.Seed = *seed
	logger.Info("generating", "dataset", p.Name, "txns", p.NumTxns, "items", p.NumItems)

	// The columnar writers need the taxonomy before the stream starts;
	// Balanced is deterministic, so this is the same hierarchy (and
	// fingerprint) gen.Stream builds internally.
	tax, err := taxonomy.Balanced(p.NumItems, p.Roots, p.Fanout)
	if err != nil {
		logx.Fatal(logger, "taxonomy", "err", err)
	}
	newWriter := func(path string) (partWriter, error) {
		switch *format {
		case "row":
			return txn.NewRowWriter(path)
		case "columnar":
			return txn.NewColumnarWriter(path, tax, *block)
		default:
			return nil, fmt.Errorf("unknown -format %q (row or columnar)", *format)
		}
	}

	n := *nodes
	if n <= 0 {
		n = 1
	}
	paths := make([]string, n)
	writers := make([]partWriter, n)
	for i := range writers {
		paths[i] = *out
		if *nodes > 0 {
			paths[i] = fmt.Sprintf("%s.n%02d.ptx", *out, i)
		}
		w, err := newWriter(paths[i])
		if err != nil {
			for _, open := range writers[:i] {
				open.Close()
			}
			logx.Fatal(logger, "create failed", "path", paths[i], "err", err)
		}
		writers[i] = w
	}

	// Round-robin by generation order — identical placement to
	// txn.Partition (transaction i goes to node i%n).
	i, itemSum := 0, int64(0)
	_, err = gen.Stream(p, func(t txn.Transaction) error {
		itemSum += int64(len(t.Items))
		w := writers[i%n]
		i++
		return w.Append(t)
	})
	if err != nil {
		for _, w := range writers {
			w.Close()
		}
		logx.Fatal(logger, "generate failed", "err", err)
	}
	for j, w := range writers {
		if err := w.Close(); err != nil {
			logx.Fatal(logger, "write failed", "path", paths[j], "err", err)
		}
	}

	if *nodes <= 0 {
		avg := 0.0
		if i > 0 {
			avg = float64(itemSum) / float64(i)
		}
		logger.Info("wrote dataset", "path", *out, "txns", i, "avg_size", avg)
		return
	}
	for j, w := range writers {
		logger.Info("wrote partition", "path", paths[j], "node", j, "txns", w.Count())
	}
}
