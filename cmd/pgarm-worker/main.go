// Command pgarm-worker runs one shared-nothing mining node as its own OS
// process, joining a full TCP mesh with its peers — the closest deployment
// shape to the paper's 16-node SP-2 that a collection of machines (or one
// machine with N processes) can offer.
//
// Start one worker per node, all with the same -addrs list and mining
// parameters; workers may start in any order. Node 0 is the coordinator and
// prints the result.
//
//	pgarm-gen -dataset R30F5 -scale 0.002 -nodes 3 -out /tmp/r
//	pgarm-worker -node 0 -addrs :7001,:7002,:7003 -in /tmp/r.n00.ptx -minsup 0.01 &
//	pgarm-worker -node 1 -addrs :7001,:7002,:7003 -in /tmp/r.n01.ptx -minsup 0.01 &
//	pgarm-worker -node 2 -addrs :7001,:7002,:7003 -in /tmp/r.n02.ptx -minsup 0.01
//
// With -http each worker serves live telemetry while mining: /metrics
// (Prometheus text exposition: mining counters plus live fabric byte/message
// gauges), /healthz (JSON with the current pass and fabric health) and the
// standard /debug/pprof endpoints. -trace writes a Chrome trace_event file of
// this node's phase spans on exit. If a peer process dies mid-run, the
// remaining workers exit non-zero with the lost peer named instead of
// hanging.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"pgarm/internal/cluster"
	"pgarm/internal/core"
	"pgarm/internal/gen"
	"pgarm/internal/item"
	"pgarm/internal/obs"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

func main() {
	log.SetFlags(0)

	var (
		nodeID   = flag.Int("node", -1, "this worker's node id (0 = coordinator)")
		addrs    = flag.String("addrs", "", "comma-separated listen addresses of every node, in id order")
		inFile   = flag.String("in", "", "this node's transaction partition (from pgarm-gen -nodes)")
		dataset  = flag.String("dataset", "R30F5", "dataset configuration defining the hierarchy")
		algName  = flag.String("algorithm", "H-HPGM-FGD", "mining algorithm")
		minsup   = flag.Float64("minsup", 0.005, "minimum support fraction")
		budget   = flag.Int64("budget", 0, "per-node candidate memory budget in bytes")
		maxK     = flag.Int("maxk", 0, "stop after this pass (0 = completion)")
		workers  = flag.Int("workers", 0, "scan workers on this node (0 or 1 = scan on the node goroutine)")
		timeout  = flag.Duration("dial-timeout", 30*time.Second, "how long to wait for peers to come up")
		topN     = flag.Int("top", 20, "itemsets to list per level (coordinator)")
		httpAddr = flag.String("http", "", "serve /metrics, /healthz and /debug/pprof on this address")
		traceOut = flag.String("trace", "", "write this node's Chrome trace_event JSON file on exit")
	)
	flag.Parse()
	log.SetPrefix(fmt.Sprintf("pgarm-worker[%d]: ", *nodeID))

	addrList := strings.Split(*addrs, ",")
	if *nodeID < 0 || *nodeID >= len(addrList) {
		log.Fatalf("-node %d out of range of %d addresses", *nodeID, len(addrList))
	}
	if *inFile == "" {
		log.Fatal("missing -in partition file")
	}
	alg, err := core.ParseAlgorithm(*algName)
	if err != nil {
		log.Fatal(err)
	}
	params, err := gen.ByName(*dataset)
	if err != nil {
		log.Fatal(err)
	}
	tax, err := taxonomy.Balanced(params.NumItems, params.Roots, params.Fanout)
	if err != nil {
		log.Fatal(err)
	}
	local, err := txn.Open(*inFile)
	if err != nil {
		log.Fatal(err)
	}

	log.Printf("joining mesh as node %d of %d...", *nodeID, len(addrList))
	ep, closer, err := cluster.DialMesh(*nodeID, addrList, cluster.MeshOptions{DialTimeout: *timeout})
	if err != nil {
		log.Fatal(err)
	}
	defer closer.Close()

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}
	reg := obs.NewRegistry()
	var mineDone atomic.Bool
	if *httpAddr != "" {
		serveHTTP(*httpAddr, reg, ep, *nodeID, len(addrList), string(alg), &mineDone)
	}

	cfg := core.Config{
		Algorithm:    alg,
		MinSupport:   *minsup,
		MaxK:         *maxK,
		MemoryBudget: *budget,
		Workers:      *workers,
		Tracer:       tracer,
		Registry:     reg,
		// Progress callbacks fire on the coordinator only; followers stay
		// quiet and expose the same numbers over -http instead.
		OnPassStart: func(pass, cands int) {
			log.Printf("pass %d: counting %d candidates...", pass, cands)
		},
		OnPass: func(p core.PassProgress) {
			log.Printf("pass %d done: |C_%d|=%d -> %d large in %v (%d bytes in, %d bytes out)",
				p.Pass, p.Pass, p.Candidates, p.Large, p.Elapsed.Round(time.Millisecond), p.BytesIn, p.BytesOut)
		},
	}
	log.Printf("mining %s over %d local transactions...", alg, local.Len())
	res, err := core.MineWorker(tax, local, cfg, ep)
	mineDone.Store(true)
	if err != nil {
		// A dead peer tears the endpoint down and records the cause; name
		// the lost peer instead of surfacing only the secondary protocol
		// error, and exit non-zero so supervisors notice.
		if ferr := ep.Err(); ferr != nil {
			log.Fatalf("aborted: %v (protocol error: %v)", ferr, err)
		}
		log.Fatal(err)
	}

	if tracer != nil {
		if werr := writeTrace(*traceOut, tracer); werr != nil {
			log.Fatal(werr)
		}
		log.Printf("wrote %d spans to %s", tracer.Spans(), *traceOut)
	}

	if *nodeID == 0 {
		fmt.Print(res.Stats.String())
		for k := 1; k <= len(res.Large); k++ {
			lk := res.LargeK(k)
			fmt.Printf("L_%d: %d itemsets\n", k, len(lk))
			if k == 1 {
				continue
			}
			for i, c := range lk {
				if i >= *topN {
					fmt.Printf("  ... %d more\n", len(lk)-i)
					break
				}
				fmt.Printf("  %s  sup_cou=%d\n", item.Format(c.Items), c.Count)
			}
		}
	} else {
		log.Printf("done: %d large levels", len(res.Large))
	}
}

// serveHTTP starts this worker's telemetry server: Prometheus /metrics
// (registry series plus live fabric gauges), a JSON /healthz and the
// standard pprof endpoints, all on a private mux so nothing else leaks in.
func serveHTTP(addr string, reg *obs.Registry, ep cluster.Endpoint, nodeID, nodes int, alg string, done *atomic.Bool) {
	l := obs.L("node", strconv.Itoa(nodeID))
	reg.GaugeFunc("pgarm_fabric_bytes_sent", "Fabric payload bytes sent since start.",
		func() float64 { return float64(ep.Stats().BytesSent) }, l)
	reg.GaugeFunc("pgarm_fabric_bytes_received", "Fabric payload bytes received since start.",
		func() float64 { return float64(ep.Stats().BytesRecv) }, l)
	reg.GaugeFunc("pgarm_fabric_msgs_sent", "Fabric messages sent since start.",
		func() float64 { return float64(ep.Stats().MsgsSent) }, l)
	reg.GaugeFunc("pgarm_fabric_msgs_received", "Fabric messages received since start.",
		func() float64 { return float64(ep.Stats().MsgsRecv) }, l)
	// The same instrument the mining node updates: register() is idempotent
	// per name+labels, so this handle reads the live pass number.
	passGauge := reg.Gauge("pgarm_pass", "Pass currently executing.", l)

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			log.Printf("metrics: %v", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		h := struct {
			Node        int    `json:"node"`
			Nodes       int    `json:"nodes"`
			Algorithm   string `json:"algorithm"`
			Pass        int64  `json:"pass"`
			Done        bool   `json:"done"`
			FabricError string `json:"fabric_error,omitempty"`
		}{Node: nodeID, Nodes: nodes, Algorithm: alg, Pass: passGauge.Value(), Done: done.Load()}
		code := http.StatusOK
		if err := ep.Err(); err != nil {
			h.FabricError = err.Error()
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		if err := json.NewEncoder(w).Encode(&h); err != nil {
			log.Printf("healthz: %v", err)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("http server: %v", err)
		}
	}()
	log.Printf("telemetry on http://%s/metrics /healthz /debug/pprof", addr)
}

func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
