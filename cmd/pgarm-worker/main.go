// Command pgarm-worker runs one shared-nothing mining node as its own OS
// process, joining a full TCP mesh with its peers — the closest deployment
// shape to the paper's 16-node SP-2 that a collection of machines (or one
// machine with N processes) can offer.
//
// Start one worker per node, all with the same -addrs list and mining
// parameters; workers may start in any order. Node 0 is the coordinator and
// prints the result.
//
//	pgarm-gen -dataset R30F5 -scale 0.002 -nodes 3 -out /tmp/r
//	pgarm-worker -node 0 -addrs :7001,:7002,:7003 -in /tmp/r.n00.ptx -minsup 0.01 &
//	pgarm-worker -node 1 -addrs :7001,:7002,:7003 -in /tmp/r.n01.ptx -minsup 0.01 &
//	pgarm-worker -node 2 -addrs :7001,:7002,:7003 -in /tmp/r.n02.ptx -minsup 0.01
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"pgarm/internal/cluster"
	"pgarm/internal/core"
	"pgarm/internal/gen"
	"pgarm/internal/item"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

func main() {
	log.SetFlags(0)

	var (
		nodeID  = flag.Int("node", -1, "this worker's node id (0 = coordinator)")
		addrs   = flag.String("addrs", "", "comma-separated listen addresses of every node, in id order")
		inFile  = flag.String("in", "", "this node's transaction partition (from pgarm-gen -nodes)")
		dataset = flag.String("dataset", "R30F5", "dataset configuration defining the hierarchy")
		algName = flag.String("algorithm", "H-HPGM-FGD", "mining algorithm")
		minsup  = flag.Float64("minsup", 0.005, "minimum support fraction")
		budget  = flag.Int64("budget", 0, "per-node candidate memory budget in bytes")
		maxK    = flag.Int("maxk", 0, "stop after this pass (0 = completion)")
		timeout = flag.Duration("dial-timeout", 30*time.Second, "how long to wait for peers to come up")
		topN    = flag.Int("top", 20, "itemsets to list per level (coordinator)")
	)
	flag.Parse()
	log.SetPrefix(fmt.Sprintf("pgarm-worker[%d]: ", *nodeID))

	addrList := strings.Split(*addrs, ",")
	if *nodeID < 0 || *nodeID >= len(addrList) {
		log.Fatalf("-node %d out of range of %d addresses", *nodeID, len(addrList))
	}
	if *inFile == "" {
		log.Fatal("missing -in partition file")
	}
	alg, err := core.ParseAlgorithm(*algName)
	if err != nil {
		log.Fatal(err)
	}
	params, err := gen.ByName(*dataset)
	if err != nil {
		log.Fatal(err)
	}
	tax, err := taxonomy.Balanced(params.NumItems, params.Roots, params.Fanout)
	if err != nil {
		log.Fatal(err)
	}
	local, err := txn.OpenFile(*inFile)
	if err != nil {
		log.Fatal(err)
	}

	log.Printf("joining mesh as node %d of %d...", *nodeID, len(addrList))
	ep, closer, err := cluster.DialMesh(*nodeID, addrList, cluster.MeshOptions{DialTimeout: *timeout})
	if err != nil {
		log.Fatal(err)
	}
	defer closer.Close()

	log.Printf("mining %s over %d local transactions...", alg, local.Len())
	res, err := core.MineWorker(tax, local, core.Config{
		Algorithm:    alg,
		MinSupport:   *minsup,
		MaxK:         *maxK,
		MemoryBudget: *budget,
	}, ep)
	if err != nil {
		log.Fatal(err)
	}

	if *nodeID == 0 {
		fmt.Print(res.Stats.String())
		for k := 1; k <= len(res.Large); k++ {
			lk := res.LargeK(k)
			fmt.Printf("L_%d: %d itemsets\n", k, len(lk))
			if k == 1 {
				continue
			}
			for i, c := range lk {
				if i >= *topN {
					fmt.Printf("  ... %d more\n", len(lk)-i)
					break
				}
				fmt.Printf("  %s  sup_cou=%d\n", item.Format(c.Items), c.Count)
			}
		}
	} else {
		log.Printf("done: %d large levels", len(res.Large))
	}
}
