// Command pgarm-worker runs one shared-nothing mining node as its own OS
// process, joining a full TCP mesh with its peers — the closest deployment
// shape to the paper's 16-node SP-2 that a collection of machines (or one
// machine with N processes) can offer.
//
// Start one worker per node, all with the same -addrs list and mining
// parameters; workers may start in any order. Node 0 is the coordinator and
// prints the result.
//
//	pgarm-gen -dataset R30F5 -scale 0.002 -nodes 3 -out /tmp/r
//	pgarm-worker -node 0 -addrs :7001,:7002,:7003 -in /tmp/r.n00.ptx -minsup 0.01 &
//	pgarm-worker -node 1 -addrs :7001,:7002,:7003 -in /tmp/r.n01.ptx -minsup 0.01 &
//	pgarm-worker -node 2 -addrs :7001,:7002,:7003 -in /tmp/r.n02.ptx -minsup 0.01
//
// With -http each worker serves live telemetry while mining: /metrics
// (Prometheus text exposition: mining counters plus live fabric byte/message
// gauges), /healthz (JSON with the current pass and fabric health),
// /debug/cluster (live run introspection: current pass, per-node progress and
// lag, latest skew snapshot — cluster-wide on the coordinator, local
// elsewhere) and the standard /debug/pprof endpoints.
//
// With -trace on every worker, each node records its phase spans; workers
// ship theirs to the coordinator at each pass barrier over the telemetry
// plane, so node 0's trace file is the merged cluster trace — every node's
// spans on its own track group, remote timestamps rebased into the
// coordinator's clock using the offsets estimated during the mesh handshake.
// -json writes the machine-readable run report (on the coordinator it covers
// the whole cluster, including the per-pass skew section). If a peer process
// dies mid-run, the remaining workers exit non-zero with the lost peer named
// instead of hanging.
//
// -engine selects the miner family: any of the six candidate engines or FPG,
// the taxonomy-aware parallel FP-Growth engine; it must match on every
// worker. With -verify (a comma-separated list of EVERY node's partition
// file) the coordinator additionally re-mines the whole database with the
// sequential Cumulate reference after the parallel run and embeds an
// "identical" bit-identity verdict in its -json report — the smoke check CI
// asserts over a real process mesh.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"pgarm/internal/cluster"
	"pgarm/internal/core"
	"pgarm/internal/cumulate"
	"pgarm/internal/driver"
	"pgarm/internal/engines"
	"pgarm/internal/fpg"
	"pgarm/internal/gen"
	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/logx"
	"pgarm/internal/metrics"
	"pgarm/internal/obs"
	"pgarm/internal/obshttp"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

func main() {
	var (
		nodeID   = flag.Int("node", -1, "this worker's node id (0 = coordinator)")
		addrs    = flag.String("addrs", "", "comma-separated listen addresses of every node, in id order")
		inFile   = flag.String("in", "", "this node's transaction partition (from pgarm-gen -nodes)")
		dataset  = flag.String("dataset", "R30F5", "dataset configuration defining the hierarchy")
		algName  = flag.String("algorithm", "H-HPGM-FGD", "mining algorithm (candidate family)")
		engName  = flag.String("engine", "", "mining engine, overrides -algorithm: "+engines.Names()+" (must match on every worker)")
		minsup   = flag.Float64("minsup", 0.005, "minimum support fraction")
		budget   = flag.Int64("budget", 0, "per-node candidate memory budget in bytes")
		adaptive = flag.Bool("adaptive", false, "H-HPGM family: escalate duplication granules per hot taxonomy subtree from observed barrier skew (must match on every worker)")
		maxK     = flag.Int("maxk", 0, "stop after this pass (0 = completion)")
		workers  = flag.Int("workers", 0, "scan workers on this node (0 or 1 = scan on the node goroutine)")
		mmapOn   = flag.Bool("mmap", false, "map the columnar partition instead of pread (falls back where unsupported)")
		verify   = flag.String("verify", "", "coordinator: comma-separated partition files of EVERY node; re-mine sequentially after the run and report bit-identity in -json")
		timeout  = flag.Duration("dial-timeout", 30*time.Second, "how long to wait for peers to come up")
		topN     = flag.Int("top", 20, "itemsets to list per level (coordinator)")
		httpAddr = flag.String("http", "", "serve /metrics, /healthz, /debug/cluster and /debug/pprof on this address")
		traceOut = flag.String("trace", "", "write this node's Chrome trace_event JSON file on exit (node 0: merged cluster trace)")
		jsonOut  = flag.String("json", "", "write the run report JSON on exit (node 0: full cluster report with skew section)")
		logOpts  = logx.Flags()
	)
	flag.Parse()
	logger := logOpts.Init("pgarm-worker").With("node", *nodeID)

	addrList := strings.Split(*addrs, ",")
	if *nodeID < 0 || *nodeID >= len(addrList) {
		logx.Fatal(logger, "-node out of range of address list", "nodes", len(addrList))
	}
	if *inFile == "" {
		logx.Fatal(logger, "missing -in partition file")
	}
	eng := engines.Engine(core.HHPGMFGD)
	if *engName != "" {
		var err error
		eng, err = engines.Parse(*engName)
		if err != nil {
			logx.Fatal(logger, "bad engine", "err", err)
		}
	} else {
		alg, err := core.ParseAlgorithm(*algName)
		if err != nil {
			logx.Fatal(logger, "bad algorithm", "err", err)
		}
		eng = engines.Engine(alg)
	}
	if eng.IsFPG() && (*budget != 0 || *adaptive) {
		logx.Fatal(logger, "-budget and -adaptive apply to the candidate engines only, not FPG")
	}
	params, err := gen.ByName(*dataset)
	if err != nil {
		logx.Fatal(logger, "bad dataset", "err", err)
	}
	tax, err := taxonomy.Balanced(params.NumItems, params.Roots, params.Fanout)
	if err != nil {
		logx.Fatal(logger, "taxonomy", "err", err)
	}
	local, err := txn.OpenWith(*inFile, txn.OpenOptions{Mmap: *mmapOn})
	if err != nil {
		logx.Fatal(logger, "open partition", "err", err)
	}

	logger.Info("joining mesh", "nodes", len(addrList))
	ep, mesh, err := cluster.DialMesh(*nodeID, addrList, cluster.MeshOptions{DialTimeout: *timeout})
	if err != nil {
		logx.Fatal(logger, "mesh dial failed", "err", err)
	}
	defer mesh.Close()

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}
	reg := obs.NewRegistry()
	view := &driver.ClusterView{}
	var mineDone atomic.Bool
	if *httpAddr != "" {
		mux := obshttp.NewMux(obshttp.Config{
			Node:      *nodeID,
			Nodes:     len(addrList),
			Algorithm: string(eng),
			Registry:  reg,
			Endpoint:  ep,
			Cluster:   view,
			Done:      &mineDone,
			Log:       logger,
		})
		bound, err := obshttp.Serve(*httpAddr, mux, logger)
		if err != nil {
			logx.Fatal(logger, "telemetry listen failed", "addr", *httpAddr, "err", err)
		}
		logger.Info("telemetry serving", "addr", bound,
			"endpoints", "/metrics /healthz /debug/cluster /debug/pprof")
	}

	// Progress callbacks fire on the coordinator only; followers stay quiet
	// and expose the same numbers over -http instead.
	onPassStart := func(pass, cands int) {
		logger.Info("pass starting", "pass", pass, "k", pass, "candidates", cands)
	}
	onPass := func(p driver.PassProgress) {
		logger.Info("pass done",
			"pass", p.Pass, "k", p.Pass, "candidates", p.Candidates, "large", p.Large,
			"elapsed", p.Elapsed.Round(time.Millisecond),
			"bytes_in", p.BytesIn, "bytes_out", p.BytesOut)
	}
	logger.Info("mining", "engine", string(eng), "txns", local.Len(), "minsup", *minsup)
	var large [][]itemset.Counted
	var stats *metrics.RunStats
	if eng.IsFPG() {
		res, err := fpg.MineWorker(tax, local, fpg.Config{
			MinSupport: *minsup,
			MaxK:       *maxK,
			Workers:    *workers,
			Tracer:     tracer,
			Registry:   reg,
			// The coordinator rebases remote span timestamps with the offsets
			// estimated during the mesh handshake; nil everywhere else.
			ClockOffsets: mesh.ClockOffsets(),
			View:         view,
			OnPassStart:  onPassStart,
			OnPass:       onPass,
		}, ep)
		mineDone.Store(true)
		if err != nil {
			fatalMineErr(logger, ep, err)
		}
		large, stats = res.Large, res.Stats
	} else {
		res, err := core.MineWorker(tax, local, core.Config{
			Algorithm:    eng.Algorithm(),
			MinSupport:   *minsup,
			MaxK:         *maxK,
			MemoryBudget: *budget,
			Workers:      *workers,
			Adaptive:     *adaptive,
			Tracer:       tracer,
			Registry:     reg,
			ClockOffsets: mesh.ClockOffsets(),
			View:         view,
			OnPassStart:  onPassStart,
			OnPass:       onPass,
		}, ep)
		mineDone.Store(true)
		if err != nil {
			fatalMineErr(logger, ep, err)
		}
		large, stats = res.Large, res.Stats
	}

	if tracer != nil {
		if d := tracer.Dropped(); d > 0 {
			logger.Warn("tracer dropped spans; trace file is truncated", "dropped", d)
		}
		if werr := writeTrace(*traceOut, tracer); werr != nil {
			logx.Fatal(logger, "trace write failed", "err", werr)
		}
		logger.Info("wrote trace", "spans", tracer.Spans(), "path", *traceOut)
	}
	// -verify: the coordinator re-mines the WHOLE database (every node's
	// partition, as listed) with the sequential Cumulate reference and embeds
	// the bit-identity verdict in its report — the cross-process analogue of
	// the in-process identity sweeps.
	verified := false
	identical := false
	if *verify != "" && *nodeID == 0 {
		identical, err = verifyIdentity(tax, *verify, *minsup, *maxK, *mmapOn, large)
		if err != nil {
			logx.Fatal(logger, "verification failed", "err", err)
		}
		verified = true
		logger.Info("verified against sequential reference", "identical", identical)
	}

	if *jsonOut != "" {
		rep := metrics.BuildReport(stats, tracer)
		var doc any = &rep
		if verified {
			doc = &verifiedReport{Report: rep, Identical: identical}
		}
		if err := writeJSON(*jsonOut, doc); err != nil {
			logx.Fatal(logger, "report write failed", "err", err)
		}
		logger.Info("wrote report", "passes", len(rep.Passes), "path", *jsonOut)
	}

	if *nodeID == 0 {
		fmt.Print(stats.String())
		for k := 1; k <= len(large); k++ {
			lk := large[k-1]
			fmt.Printf("L_%d: %d itemsets\n", k, len(lk))
			if k == 1 {
				continue
			}
			for i, c := range lk {
				if i >= *topN {
					fmt.Printf("  ... %d more\n", len(lk)-i)
					break
				}
				fmt.Printf("  %s  sup_cou=%d\n", item.Format(c.Items), c.Count)
			}
		}
	} else {
		logger.Info("done", "large_levels", len(large))
	}
}

// verifiedReport is the -verify -json envelope: the usual run report plus the
// coordinator's bit-identity verdict, for CI to assert with jq.
type verifiedReport struct {
	metrics.Report
	Identical bool `json:"identical"`
}

// fatalMineErr exits with the most useful cause: a dead peer tears the
// endpoint down and records why — name the lost peer instead of surfacing
// only the secondary protocol error, and exit non-zero so supervisors notice.
func fatalMineErr(logger *slog.Logger, ep cluster.Endpoint, err error) {
	if ferr := ep.Err(); ferr != nil {
		logx.Fatal(logger, "aborted", "cause", ferr, "protocol_err", err)
	}
	logx.Fatal(logger, "mining failed", "err", err)
}

// verifyIdentity re-mines every listed partition sequentially with Cumulate
// and compares levels, itemsets and counts against the parallel result.
func verifyIdentity(tax *taxonomy.Taxonomy, list string, minsup float64, maxK int, mmapOn bool, large [][]itemset.Counted) (bool, error) {
	whole := txn.NewDB(nil)
	for _, path := range strings.Split(list, ",") {
		src, err := txn.OpenWith(strings.TrimSpace(path), txn.OpenOptions{Mmap: mmapOn})
		if err != nil {
			return false, err
		}
		if err := src.Scan(func(t txn.Transaction) error {
			whole.Append(txn.Transaction{TID: t.TID, Items: item.Clone(t.Items)})
			return nil
		}); err != nil {
			return false, err
		}
	}
	ref, err := cumulate.Mine(tax, whole, cumulate.Config{MinSupport: minsup, MaxK: maxK})
	if err != nil {
		return false, err
	}
	if len(ref.Large) != len(large) {
		return false, nil
	}
	for k := range large {
		w, g := ref.Large[k], large[k]
		if len(w) != len(g) {
			return false, nil
		}
		for i := range w {
			if w[i].Count != g[i].Count || !item.Equal(w[i].Items, g[i].Items) {
				return false, nil
			}
		}
	}
	return true, nil
}

func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
