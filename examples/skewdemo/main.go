// Skewdemo: make the paper's load-balancing story visible. A deliberately
// skewed basket stream concentrates support in a handful of hot product
// trees; plain H-HPGM then funnels most of the counting work to the node
// owning those trees, while the TGD/PGD/FGD variants copy the hot candidate
// itemsets everywhere and flatten the per-node probe load (the Figure 15
// effect, at example scale).
//
//	go run ./examples/skewdemo
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pgarm/internal/core"
	"pgarm/internal/experiment"
	"pgarm/internal/item"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

func main() {
	// 6 trees × 3 levels, fanout 4.
	tax := taxonomy.MustBalanced(500, 6, 4)
	leaves := tax.Leaves()

	// 80% of basket items come from tree 0's leaves (the "hot" department),
	// the rest spread uniformly.
	var hot []item.Item
	for _, l := range leaves {
		if tax.Root(l) == tax.Roots()[0] {
			hot = append(hot, l)
		}
	}
	rng := rand.New(rand.NewSource(11))
	db := &txn.DB{}
	for tid := int64(0); tid < 12000; tid++ {
		items := make([]item.Item, 0, 6)
		for len(items) < 6 {
			if rng.Float64() < 0.8 {
				items = append(items, hot[rng.Intn(len(hot))])
			} else {
				items = append(items, leaves[rng.Intn(len(leaves))])
			}
		}
		db.Append(txn.Transaction{TID: tid, Items: item.Dedup(items)})
	}

	parts := make([]txn.Scanner, 0, 8)
	for _, p := range txn.Partition(db, 8) {
		parts = append(parts, p)
	}

	// A budget small enough that duplication choices matter.
	const budget = 640 << 10
	fmt.Println("per-node probe counts at pass 2 (8 nodes, hot-tree skewed data):")
	for _, alg := range []core.Algorithm{core.HHPGM, core.HHPGMTGD, core.HHPGMPGD, core.HHPGMFGD} {
		res, err := core.Mine(tax, parts, core.Config{
			Algorithm:    alg,
			MinSupport:   0.01,
			MaxK:         2,
			MemoryBudget: budget,
		})
		if err != nil {
			log.Fatal(err)
		}
		ps := res.Stats.Pass(2)
		if ps == nil {
			log.Fatalf("%s: no pass 2", alg)
		}
		labels := make([]string, len(ps.Nodes))
		vals := make([]float64, len(ps.Nodes))
		for i, ns := range ps.Nodes {
			labels[i] = fmt.Sprintf("node %d", ns.Node)
			vals[i] = float64(ns.Probes)
		}
		fmt.Printf("\n%s  (duplicated %d of %d candidates; skew %s)\n%s",
			alg, ps.Duplicated, ps.Candidates, ps.ProbeSkew(), experiment.Bars(labels, vals, 46))
	}
	fmt.Println("\nfiner duplication granules flatten the distribution, as in Figure 15 of the paper.")
}
