// Retail: mine a synthetic retail chain's baskets — the workload the
// paper's introduction motivates (POS data over a product classification
// hierarchy) — comparing the flat Apriori view with the generalized view,
// and showing the R-interestingness filter.
//
//	go run ./examples/retail
package main

import (
	"fmt"
	"log"

	"pgarm/internal/core"
	"pgarm/internal/cumulate"
	"pgarm/internal/gen"
	"pgarm/internal/rules"
	"pgarm/internal/txn"
)

func main() {
	// A department-store-sized catalog: 12 departments, fanout 6,
	// ~5000 SKUs, 20,000 baskets.
	params := gen.Params{
		Name:            "retail-demo",
		NumTxns:         20000,
		AvgTxnSize:      8,
		AvgPatternSize:  4,
		NumPatterns:     600,
		NumItems:        5000,
		Roots:           12,
		Fanout:          6,
		CorrelationMean: 0.5,
		CorruptionMean:  0.5,
		CorruptionSD:    0.1,
		Seed:            42,
	}
	ds, err := gen.Generate(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog: %v; %d baskets, avg size %.1f\n\n",
		ds.Taxonomy, ds.DB.Len(), ds.DB.AvgSize())

	const minSup, minConf = 0.01, 0.5

	// Flat mining sees only SKU-level co-occurrence.
	flat, err := cumulate.Apriori(ds.DB, cumulate.Config{MinSupport: minSup}, ds.Taxonomy.NumItems())
	if err != nil {
		log.Fatal(err)
	}
	flatPairs := len(flat.LargeK(2))

	// Generalized mining on an 8-node shared-nothing cluster.
	parts := make([]txn.Scanner, 0, 8)
	for _, p := range txn.Partition(ds.DB, 8) {
		parts = append(parts, p)
	}
	res, err := core.Mine(ds.Taxonomy, parts, core.Config{
		Algorithm:  core.HHPGMFGD,
		MinSupport: minSup,
	})
	if err != nil {
		log.Fatal(err)
	}
	genPairs := len(res.LargeK(2))
	fmt.Printf("large 2-itemsets: flat Apriori %d vs generalized %d\n", flatPairs, genPairs)
	fmt.Println("(the hierarchy surfaces department/category associations invisible at SKU level)")

	rs, err := rules.Derive(ds.Taxonomy, res.All(), res.SupportIndex(), rules.Config{
		MinConfidence: minConf,
		NumTxns:       ds.DB.Len(),
	})
	if err != nil {
		log.Fatal(err)
	}
	interesting := rules.Prune(ds.Taxonomy, rs, res.SupportIndex(), ds.DB.Len(), 1.3)
	fmt.Printf("\nrules at conf>=%.0f%%: %d total, %d survive R-interestingness (R=1.3)\n",
		minConf*100, len(rs), len(interesting))
	fmt.Println("\ntop rules by confidence:")
	for i, r := range interesting {
		if i >= 10 {
			break
		}
		fmt.Printf("  %s\n", r)
	}

	st := res.Stats.Pass(2)
	if st != nil {
		fmt.Printf("\npass-2 cluster stats: %d candidates, %d duplicated, %.1f KB received/node, probe skew %s\n",
			st.Candidates, st.Duplicated, st.AvgBytesReceived()/1024, st.ProbeSkew())
	}
}
