// Distributed: run the miner over the loopback-TCP fabric, the closest
// one-box emulation of the paper's shared-nothing SP-2 — every itemset
// group really crosses a socket — and compare the measured communication of
// HPGM against H-HPGM (the Table 6 effect, at example scale).
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"pgarm/internal/core"
	"pgarm/internal/gen"
	"pgarm/internal/txn"
)

func main() {
	params := gen.Params{
		Name:            "tcp-demo",
		NumTxns:         8000,
		AvgTxnSize:      8,
		AvgPatternSize:  4,
		NumPatterns:     400,
		NumItems:        3000,
		Roots:           10,
		Fanout:          5,
		CorrelationMean: 0.5,
		CorruptionMean:  0.5,
		CorruptionSD:    0.1,
		Seed:            3,
	}
	ds, err := gen.Generate(params)
	if err != nil {
		log.Fatal(err)
	}
	const nodes = 6
	parts := make([]txn.Scanner, 0, nodes)
	for _, p := range txn.Partition(ds.DB, nodes) {
		parts = append(parts, p)
	}

	fmt.Printf("%d transactions on %d TCP-connected nodes, minsup 1%%\n\n", ds.DB.Len(), nodes)
	for _, alg := range []core.Algorithm{core.HPGM, core.HHPGM} {
		res, err := core.Mine(ds.Taxonomy, parts, core.Config{
			Algorithm:  alg,
			MinSupport: 0.01,
			MaxK:       2,
			Fabric:     core.FabricTCP,
		})
		if err != nil {
			log.Fatal(err)
		}
		ps := res.Stats.Pass(2)
		if ps == nil {
			log.Fatalf("%s: no pass 2", alg)
		}
		fmt.Printf("%-8s |C2|=%-8d |L2|=%-6d items shipped=%-9d avg received/node=%.1f KB\n",
			alg, ps.Candidates, ps.Large, ps.TotalItemsSent(), ps.AvgBytesReceived()/1024)
	}
	fmt.Println("\nH-HPGM ships only closest-to-bottom large items to the owners of their root")
	fmt.Println("trees; HPGM ships every k-subset of every ancestor-extended transaction.")
}
