// Quickstart: mine generalized association rules over a tiny hand-built
// classification hierarchy with the paper's best algorithm (H-HPGM-FGD) on a
// 4-node simulated shared-nothing cluster, then derive rules.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pgarm/internal/core"
	"pgarm/internal/item"
	"pgarm/internal/rules"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

func main() {
	// A small retail hierarchy, in the spirit of the paper's Figure 1:
	//
	//	clothes ── outerwear ── jacket, ski pants
	//	        └─ shirt
	//	footwear ── shoes, hiking boots
	var b taxonomy.Builder
	clothes := b.AddRoot()
	footwear := b.AddRoot()
	outerwear := b.AddChild(clothes)
	shirt := b.AddChild(clothes)
	jacket := b.AddChild(outerwear)
	skiPants := b.AddChild(outerwear)
	shoes := b.AddChild(footwear)
	boots := b.AddChild(footwear)
	tax := b.MustBuild()

	names := make([]string, tax.NumItems())
	names[clothes], names[footwear] = "clothes", "footwear"
	names[outerwear], names[shirt] = "outerwear", "shirt"
	names[jacket], names[skiPants] = "jacket", "ski-pants"
	names[shoes], names[boots] = "shoes", "hiking-boots"

	// A few baskets. Note nobody buys "outerwear" literally — the
	// generalized rules below still discover outerwear => hiking-boots by
	// climbing the hierarchy.
	baskets := [][]item.Item{
		{jacket, boots},
		{skiPants, boots},
		{jacket, shoes},
		{shirt},
		{jacket, boots, shirt},
		{skiPants, boots},
	}
	db := &txn.DB{}
	for i, items := range baskets {
		db.Append(txn.Transaction{TID: int64(i + 1), Items: item.Dedup(item.Clone(items))})
	}

	// Four shared-nothing nodes, each owning a slice of the database.
	parts := make([]txn.Scanner, 0, 4)
	for _, p := range txn.Partition(db, 4) {
		parts = append(parts, p)
	}

	res, err := core.Mine(tax, parts, core.Config{
		Algorithm:  core.HHPGMFGD,
		MinSupport: 0.3, // 30% of 6 baskets = 2 transactions
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Large itemsets (with closure support counts):")
	for k := 1; k <= len(res.Large); k++ {
		for _, c := range res.LargeK(k) {
			fmt.Printf("  k=%d %-28s sup_cou=%d\n", k, labelSet(c.Items, names), c.Count)
		}
	}

	rs, err := rules.Derive(tax, res.All(), res.SupportIndex(), rules.Config{
		MinConfidence: 0.6,
		NumTxns:       db.Len(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGeneralized rules (confidence >= 60%%):\n%s", rules.Format(rs, names))
}

func labelSet(items []item.Item, names []string) string {
	s := "{"
	for i, x := range items {
		if i > 0 {
			s += ","
		}
		s += names[x]
	}
	return s + "}"
}
