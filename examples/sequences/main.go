// Sequences: the paper's stated future work — mining *generalized
// sequential patterns* over the classification hierarchy (GSP, SA96) and
// its shared-nothing parallelization in the spirit of [SK98]. A planted
// "jacket then hiking boots" buying pattern is recovered at every hierarchy
// level, sequentially and on a 4-node cluster.
//
//	go run ./examples/sequences
package main

import (
	"fmt"
	"log"

	"pgarm/internal/item"
	"pgarm/internal/seq"
	"pgarm/internal/taxonomy"
)

func main() {
	var b taxonomy.Builder
	clothes := b.AddRoot()
	footwear := b.AddRoot()
	outerwear := b.AddChild(clothes)
	jacket := b.AddChild(outerwear)
	skiPants := b.AddChild(outerwear)
	boots := b.AddChild(footwear)
	shoes := b.AddChild(footwear)
	tax := b.MustBuild()
	names := []string{"clothes", "footwear", "outerwear", "jacket", "ski-pants", "hiking-boots", "shoes"}

	// 100 customers; 70 buy a jacket or ski-pants first and boots on a
	// later visit, 30 browse shoes only.
	db := &seq.DB{}
	for cid := int64(0); cid < 100; cid++ {
		switch {
		case cid%10 < 4:
			db.Append(seq.Sequence{CID: cid, Elements: [][]item.Item{{jacket}, {shoes}, {boots}}})
		case cid%10 < 7:
			db.Append(seq.Sequence{CID: cid, Elements: [][]item.Item{{skiPants}, {boots}}})
		default:
			db.Append(seq.Sequence{CID: cid, Elements: [][]item.Item{{shoes}}})
		}
	}

	res, err := seq.Mine(tax, db, seq.Config{MinSupport: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("frequent generalized sequential patterns (sequential GSP):")
	printPatterns(res, names)

	par, err := seq.MineParallel(tax, seq.Partition(db, 4), seq.ParallelConfig{
		Algorithm:  seq.SPSPM,
		MinSupport: 0.3,
	})
	if err != nil {
		log.Fatal(err)
	}
	same := len(par.All()) == len(res.All())
	fmt.Printf("\n4-node SPSPM found %d patterns — identical to sequential: %v\n", len(par.All()), same)
	if ps := par.Stats.Pass(2); ps != nil {
		fmt.Printf("pass-2 cluster stats: %d candidate sequences, %d items broadcast\n",
			ps.Candidates, ps.TotalItemsSent())
	}
}

func printPatterns(res *seq.Result, names []string) {
	for k := 2; k <= len(res.Frequent); k++ {
		for _, p := range res.FrequentK(k) {
			fmt.Printf("  %s  (%d customers)\n", render(p.Elements, names), p.Count)
		}
	}
}

func render(elements [][]item.Item, names []string) string {
	s := "<"
	for _, e := range elements {
		s += "{"
		for i, x := range e {
			if i > 0 {
				s += ","
			}
			s += names[x]
		}
		s += "}"
	}
	return s + ">"
}
