// Paper-level benchmarks: one testing.B target per evaluation table/figure
// of Shintani & Kitsuregawa (SIGMOD 1998), plus ablations for the design
// choices DESIGN.md calls out. Each benchmark runs a scaled-down version of
// the paper's workload and reports the experiment's headline quantity as a
// custom metric, so `go test -bench=. -benchmem` regenerates the evaluation
// in miniature; `pgarm-bench` produces the full tables.
package pgarm

import (
	"fmt"
	"sync"
	"testing"

	"pgarm/internal/core"
	"pgarm/internal/cumulate"
	"pgarm/internal/gen"
	"pgarm/internal/item"
	"pgarm/internal/itemset"
	"pgarm/internal/metrics"
	"pgarm/internal/seq"
	"pgarm/internal/taxonomy"
	"pgarm/internal/txn"
)

// benchScale keeps a single bench iteration around a second on a small box
// while preserving the paper datasets' frequency structure.
const benchScale = 0.002 // 6,400 of 3.2M transactions

var (
	benchOnce sync.Once
	benchData *gen.Dataset
)

func benchDataset(b *testing.B) *gen.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		ds, err := gen.Generate(gen.R30F5().Scaled(benchScale))
		if err != nil {
			panic(err)
		}
		benchData = ds
	})
	return benchData
}

func benchParts(ds *gen.Dataset, n int) []txn.Scanner {
	parts := txn.Partition(ds.DB, n)
	out := make([]txn.Scanner, n)
	for i := range parts {
		out[i] = parts[i]
	}
	return out
}

func mustMine(b *testing.B, ds *gen.Dataset, cfg core.Config, nodes int) *core.Result {
	b.Helper()
	res, err := core.Mine(ds.Taxonomy, benchParts(ds, nodes), cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable6 measures the communication volume HPGM and H-HPGM incur
// at pass 2 (Table 6 of the paper: H-HPGM receives ~26-29x less).
func BenchmarkTable6(b *testing.B) {
	ds := benchDataset(b)
	for _, alg := range []core.Algorithm{core.HPGM, core.HHPGM} {
		for _, nodes := range []int{8, 16} {
			b.Run(fmt.Sprintf("%s/%dnodes", alg, nodes), func(b *testing.B) {
				var recv float64
				for i := 0; i < b.N; i++ {
					res := mustMine(b, ds, core.Config{Algorithm: alg, MinSupport: 0.01, MaxK: 2}, nodes)
					recv = res.Stats.Pass(2).AvgBytesReceived()
				}
				b.ReportMetric(recv/1024, "KB-recv/node")
			})
		}
	}
}

// BenchmarkFig13 measures pass-2 modeled execution time for HPGM vs H-HPGM
// across the support sweep (Figure 13).
func BenchmarkFig13(b *testing.B) {
	ds := benchDataset(b)
	cost := metrics.DefaultCostModel()
	for _, alg := range []core.Algorithm{core.HPGM, core.HHPGM} {
		for _, minsup := range []float64{0.02, 0.01, 0.005} {
			b.Run(fmt.Sprintf("%s/minsup%.3g", alg, minsup), func(b *testing.B) {
				var modeled float64
				for i := 0; i < b.N; i++ {
					res := mustMine(b, ds, core.Config{Algorithm: alg, MinSupport: minsup, MaxK: 2}, 16)
					modeled = cost.PassTime(*res.Stats.Pass(2)).Seconds()
				}
				b.ReportMetric(modeled*1000, "modeled-ms")
			})
		}
	}
}

// benchBudget gives the duplicating variants the Figure 14/15/16 memory
// regime at bench scale: candidates exceed one node's share but free space
// remains for duplication.
const benchBudget = 12 << 20

// BenchmarkFig14 measures pass-2 modeled time of all algorithms under the
// per-node memory budget (Figure 14: NPGM collapses, FGD wins).
func BenchmarkFig14(b *testing.B) {
	ds := benchDataset(b)
	cost := metrics.DefaultCostModel()
	for _, alg := range []core.Algorithm{core.NPGM, core.HHPGM, core.HHPGMTGD, core.HHPGMPGD, core.HHPGMFGD} {
		b.Run(string(alg), func(b *testing.B) {
			var modeled float64
			for i := 0; i < b.N; i++ {
				res := mustMine(b, ds, core.Config{
					Algorithm: alg, MinSupport: 0.005, MaxK: 2, MemoryBudget: benchBudget,
				}, 16)
				modeled = cost.PassTime(*res.Stats.Pass(2)).Seconds()
			}
			b.ReportMetric(modeled*1000, "modeled-ms")
		})
	}
}

// BenchmarkFig15 measures the per-node probe-load imbalance (Figure 15:
// max/mean flattens from H-HPGM to FGD).
func BenchmarkFig15(b *testing.B) {
	ds := benchDataset(b)
	for _, alg := range []core.Algorithm{core.HHPGM, core.HHPGMTGD, core.HHPGMPGD, core.HHPGMFGD} {
		b.Run(string(alg), func(b *testing.B) {
			var maxOverMean float64
			for i := 0; i < b.N; i++ {
				res := mustMine(b, ds, core.Config{
					Algorithm: alg, MinSupport: 0.005, MaxK: 2, MemoryBudget: benchBudget,
				}, 16)
				maxOverMean = res.Stats.Pass(2).ProbeSkew().MaxOverMean
			}
			b.ReportMetric(maxOverMean, "max/mean-probes")
		})
	}
}

// BenchmarkFig16 measures modeled speedup from 4 to 16 nodes (Figure 16:
// FGD closest to linear).
func BenchmarkFig16(b *testing.B) {
	ds := benchDataset(b)
	cost := metrics.DefaultCostModel()
	for _, alg := range []core.Algorithm{core.HHPGM, core.HHPGMFGD} {
		b.Run(string(alg), func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				cfg := core.Config{Algorithm: alg, MinSupport: 0.005, MaxK: 2, MemoryBudget: benchBudget}
				t4 := cost.PassTime(*mustMine(b, ds, cfg, 4).Stats.Pass(2))
				t16 := cost.PassTime(*mustMine(b, ds, cfg, 16).Stats.Pass(2))
				speedup = 4 * t4.Seconds() / t16.Seconds()
			}
			b.ReportMetric(speedup, "speedup-at-16")
		})
	}
}

// BenchmarkAblationPartitioning isolates the Table 6 delta: identical
// workload, itemset-hash vs root-hash placement, items shipped.
func BenchmarkAblationPartitioning(b *testing.B) {
	ds := benchDataset(b)
	for _, alg := range []core.Algorithm{core.HPGM, core.HHPGM} {
		b.Run(string(alg), func(b *testing.B) {
			var items float64
			for i := 0; i < b.N; i++ {
				res := mustMine(b, ds, core.Config{Algorithm: alg, MinSupport: 0.01, MaxK: 2}, 8)
				items = float64(res.Stats.Pass(2).TotalItemsSent())
			}
			b.ReportMetric(items, "items-shipped")
		})
	}
}

// BenchmarkAblationDuplication sweeps the memory budget to show how much
// free space FGD needs before the load flattens.
func BenchmarkAblationDuplication(b *testing.B) {
	ds := benchDataset(b)
	for _, budget := range []int64{benchBudget / 4, benchBudget, benchBudget * 4} {
		b.Run(fmt.Sprintf("budget%dMB", budget>>20), func(b *testing.B) {
			var maxOverMean float64
			for i := 0; i < b.N; i++ {
				res := mustMine(b, ds, core.Config{
					Algorithm: core.HHPGMFGD, MinSupport: 0.005, MaxK: 2, MemoryBudget: budget,
				}, 16)
				maxOverMean = res.Stats.Pass(2).ProbeSkew().MaxOverMean
			}
			b.ReportMetric(maxOverMean, "max/mean-probes")
		})
	}
}

// BenchmarkAblationFabric compares the in-process channel fabric with the
// loopback TCP fabric carrying identical payloads.
func BenchmarkAblationFabric(b *testing.B) {
	ds := benchDataset(b)
	for name, kind := range map[string]core.FabricKind{"chan": core.FabricChan, "tcp": core.FabricTCP} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustMine(b, ds, core.Config{
					Algorithm: core.HHPGM, MinSupport: 0.01, MaxK: 2, Fabric: kind,
				}, 8)
			}
		})
	}
}

// BenchmarkAblationIndex compares flat-map subset probing against the
// classic hash-tree candidate index on the same counting workload.
func BenchmarkAblationIndex(b *testing.B) {
	ds := benchDataset(b)
	res, err := cumulate.Mine(ds.Taxonomy, ds.DB, cumulate.Config{MinSupport: 0.01, MaxK: 1})
	if err != nil {
		b.Fatal(err)
	}
	l1 := res.LargeK(1)
	flat := make([]item.Item, len(l1))
	large := make([]bool, ds.Taxonomy.NumItems())
	for i, c := range l1 {
		flat[i] = c.Items[0]
		large[c.Items[0]] = true
	}
	prev := make([][]item.Item, len(l1))
	for i, c := range l1 {
		prev[i] = c.Items
	}
	cands := cumulate.GenerateCandidates(ds.Taxonomy, prev, 2)
	member := cumulate.KeepSet(ds.Taxonomy, cands)
	view := taxonomy.NewView(ds.Taxonomy, large, member)

	b.Run("flat-map", func(b *testing.B) {
		table := itemset.NewTable(len(cands))
		for _, c := range cands {
			table.Add(c)
		}
		scratch := make([]item.Item, 0, 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ds.DB.Scan(func(t txn.Transaction) error {
				ext := cumulate.ExtendFiltered(view, member, scratch[:0], t.Items)
				scratch = ext
				itemset.ForEachSubset(ext, 2, func(sub []item.Item) bool {
					if id := table.Lookup(sub); id >= 0 {
						table.Increment(id)
					}
					return true
				})
				return nil
			})
		}
	})
	b.Run("hash-tree", func(b *testing.B) {
		table := itemset.NewTable(len(cands))
		tree := itemset.NewHashTree(2, 16, 32)
		for _, c := range cands {
			tree.Insert(table.Add(c), c)
		}
		scratch := make([]item.Item, 0, 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ds.DB.Scan(func(t txn.Transaction) error {
				ext := cumulate.ExtendFiltered(view, member, scratch[:0], t.Items)
				scratch = ext
				tree.Match(ext, func(id int32) { table.Increment(id) })
				return nil
			})
		}
	})
}

// BenchmarkProbe isolates one candidate-table probe: the packed-string map
// baseline allocates a key per lookup; the open-addressed flat index probes
// in place and must report 0 allocs/op.
func BenchmarkProbe(b *testing.B) {
	ds := benchDataset(b)
	res, err := cumulate.Mine(ds.Taxonomy, ds.DB, cumulate.Config{MinSupport: 0.01, MaxK: 2})
	if err != nil {
		b.Fatal(err)
	}
	var cands [][]item.Item
	for _, c := range res.LargeK(2) {
		cands = append(cands, c.Items)
	}
	if len(cands) == 0 {
		b.Fatal("no 2-itemsets at bench scale")
	}
	table := itemset.NewTable(len(cands))
	byKey := make(map[string]int32, len(cands))
	packed := make([][]byte, len(cands))
	for i, c := range cands {
		id := table.Add(c)
		byKey[itemset.Key(c)] = id
		packed[i] = []byte(itemset.Key(c))
	}

	b.Run("map-key", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := cands[i%len(cands)]
			if _, ok := byKey[itemset.Key(c)]; !ok {
				b.Fatal("miss")
			}
		}
	})
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if table.Lookup(cands[i%len(cands)]) < 0 {
				b.Fatal("miss")
			}
		}
	})
	b.Run("flat-packed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if table.LookupPacked(packed[i%len(packed)]) < 0 {
				b.Fatal("miss")
			}
		}
	})
}

// BenchmarkWorkers measures wall-clock for the full mine as the per-node scan
// worker pool grows (DESIGN.md §5 "workers per node" ablation). Total
// parallelism is nodes x workers; the result is bit-identical at any setting.
func BenchmarkWorkers(b *testing.B) {
	ds := benchDataset(b)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustMine(b, ds, core.Config{
					Algorithm: core.HHPGM, MinSupport: 0.01, MaxK: 2, Workers: workers,
				}, 4)
			}
		})
	}
}

// benchLevels mines the bench dataset sequentially and returns L_1 (as
// 1-itemsets) and L_2 — the real generation inputs for passes 2 and 3.
func benchLevels(b *testing.B) (l1, l2 [][]item.Item, tax *taxonomy.Taxonomy) {
	b.Helper()
	ds := benchDataset(b)
	res, err := cumulate.Mine(ds.Taxonomy, ds.DB, cumulate.Config{MinSupport: 0.01, MaxK: 2})
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range res.LargeK(1) {
		l1 = append(l1, c.Items)
	}
	for _, c := range res.LargeK(2) {
		l2 = append(l2, c.Items)
	}
	if len(l1) == 0 || len(l2) == 0 {
		b.Fatal("bench dataset produced empty levels")
	}
	return l1, l2, ds.Taxonomy
}

// BenchmarkGenerate measures the candidate-generation pass boundary across
// worker counts, against the retired serial path (Pairs + filter at k=2,
// per-candidate-allocating Gen at k>2) as the reference. allocs/op is the
// headline: the sharded generator builds candidates in per-shard flat arenas
// and probes an open-addressed prune set, so allocations stop scaling with
// the survivor count.
func BenchmarkGenerate(b *testing.B) {
	l1, l2, tax := benchLevels(b)
	b.Run("k2/serial-reference", func(b *testing.B) {
		flat := make([]item.Item, len(l1))
		for i, s := range l1 {
			flat[i] = s[0]
		}
		item.Sort(flat)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pairs := itemset.Pairs(flat)
			w := 0
			for _, p := range pairs {
				if !tax.IsAncestor(p[0], p[1]) && !tax.IsAncestor(p[1], p[0]) {
					pairs[w] = p
					w++
				}
			}
			_ = pairs[:w]
		}
	})
	b.Run("k3/serial-reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			itemset.Gen(l2)
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("k2/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cumulate.GenerateCandidatesN(tax, l1, 2, workers, nil)
			}
		})
		b.Run(fmt.Sprintf("k3/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cumulate.GenerateCandidatesN(tax, l2, 3, workers, nil)
			}
		})
	}
}

// BenchmarkBuildIndex measures the open-addressed candidate index build
// (table fill) across worker counts over pass-2 candidates.
func BenchmarkBuildIndex(b *testing.B) {
	l1, _, tax := benchLevels(b)
	cands := cumulate.GenerateCandidates(tax, l1, 2)
	if len(cands) == 0 {
		b.Fatal("no candidates")
	}
	b.Run("serial-reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			itemset.BuildIndex(cands)
		}
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				itemset.BuildIndexParallel(cands, workers)
			}
		})
	}
}

// BenchmarkSequentialCumulate is the single-node baseline all speedups are
// ultimately against.
func BenchmarkSequentialCumulate(b *testing.B) {
	ds := benchDataset(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cumulate.Mine(ds.Taxonomy, ds.DB, cumulate.Config{MinSupport: 0.01, MaxK: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSequentialPatterns covers the future-work extension: generalized
// sequential pattern mining, sequential GSP vs the two parallel variants.
func BenchmarkSequentialPatterns(b *testing.B) {
	tax := taxonomy.MustBalanced(2000, 10, 5)
	p := seq.DefaultGenParams()
	p.NumCustomers = 1500
	db := seq.GenerateSequences(tax, p)
	b.Run("GSP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := seq.Mine(tax, db, seq.Config{MinSupport: 0.03, MaxK: 3}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, alg := range []seq.Algorithm{seq.NPSPM, seq.SPSPM} {
		b.Run(string(alg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := seq.MineParallel(tax, seq.Partition(db, 8), seq.ParallelConfig{
					Algorithm: alg, MinSupport: 0.03, MaxK: 3,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
