module pgarm

go 1.22
