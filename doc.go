// Package pgarm is a Go reproduction of Shintani & Kitsuregawa, "Parallel
// Mining Algorithms for Generalized Association Rules with Classification
// Hierarchy" (SIGMOD 1998).
//
// The library lives under internal/: the six parallel algorithms in
// internal/core, their substrates in sibling packages, and the evaluation
// harness in internal/experiment. Executables are under cmd/, runnable
// examples under examples/. The root package exists to carry the module
// documentation and the paper-level benchmarks in bench_test.go, one per
// evaluation table and figure.
package pgarm
